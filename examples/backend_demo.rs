//! One request, three execution substrates (DESIGN.md §14): the same
//! `ServeRequest` submitted to an `ExplanationService` on the local
//! worker pool, on a process pool of `xai-shard-worker` children, and
//! across two loopback shard daemons — every payload byte-identical.
//! Then the backend trait driven directly, plus the shard cache and
//! session reuse instrumentation.
//!
//! ```sh
//! cargo build && cargo run --example backend_demo
//! ```
//!
//! (A debug `cargo build` first, so the sibling `xai-shard-worker`
//! binary exists for the process-pool and cluster legs.)

use std::sync::Arc;

use xai::models::Persist;
use xai::prelude::*;
use xai::serve::{register_persist, workspace_service, ServiceConfig};
use xai::shard::sibling_worker_exe;
use xai::transport::DaemonHandle;

fn main() {
    let data = xai::data::synth::german_credit(80, 7);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let row = data.row(0).to_vec();

    let Some(worker) = sibling_worker_exe() else {
        println!("xai-shard-worker binary not found next to this example;");
        println!("run `cargo build` first to exercise the remote backends.");
        return;
    };

    // ── 1. A service with all three backends registered ─────────────
    let service = workspace_service(ServiceConfig::default());
    register_persist(&service, "credit", model.clone(), data.clone());

    let daemons: Vec<DaemonHandle> = (0..2)
        .map(|_| DaemonHandle::spawn(&worker, &[]).expect("spawn daemon"))
        .collect();
    println!("shard daemons:");
    for d in &daemons {
        println!("  xai-shard-worker --listen {}", d.addr());
    }
    service.set_backend(Arc::new(ProcessPoolBackend::new(PoolConfig::new(&worker))));
    let config = ClusterConfig::new(daemons.iter().map(|d| d.addr().to_string()));
    let cluster = ClusterBackend::from_config(config).unwrap();
    let runner = Arc::clone(cluster.runner());
    service.set_backend(Arc::new(cluster));

    // ── 2. One request on each substrate: identical bytes ───────────
    let plan = RunConfig::seeded(11).with_workers(2);
    let request = |backend: BackendChoice| {
        ServeRequest::new("Kernel SHAP", "credit")
            .with_instance(&row)
            .with_plan(plan.with_backend(backend))
    };
    let local = service.submit(&request(BackendChoice::Local)).unwrap();
    println!("\nlocal backend: {} bytes of canonical JSON", local.payload.len());
    for choice in [BackendChoice::process_pool(2), BackendChoice::cluster(4)] {
        let response = service.submit(&request(choice)).unwrap();
        assert_eq!(response.payload, local.payload);
        assert!(!response.degraded);
        println!("{} backend: bit-identical to the local run", choice.kind().as_str());
    }
    let stats = service.stats();
    println!(
        "serve stats: local {} / pool {} / cluster {} completed, {} shard-cache misses",
        stats.local_completed, stats.pool_completed, stats.cluster_completed,
        stats.shard_cache_misses
    );

    // ── 3. The trait driven directly, cache and sessions visible ────
    let req = ExplainRequest::new(&data).instance(&row).plan(plan);
    let method = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 128, ..KernelShapConfig::default() },
    };
    let reference = method.explain(&model, &req).unwrap().to_json_string();
    let backends: Vec<Box<dyn ExecutionBackend>> = vec![
        Box::new(LocalBackend),
        Box::new(ProcessPoolBackend::new(PoolConfig::new(&worker))),
        Box::new(ClusterBackend::new(Arc::clone(&runner))),
    ];
    for backend in &backends {
        let job = BackendJob::new(&method, &model, &req, 4).with_model_json(model.save());
        let outcome = backend.execute(&job).unwrap();
        assert_eq!(outcome.explanation.to_json_string(), reference);
        println!("ExecutionBackend::{}: 4 shards, identical bytes", backend.kind().as_str());
    }
    // The identical cluster job again: answered from the shard cache
    // over reused sessions.
    let job = BackendJob::new(&method, &model, &req, 4).with_model_json(model.save());
    let outcome = backends[2].execute(&job).unwrap();
    assert_eq!(outcome.explanation.to_json_string(), reference);
    let stats = runner.stats();
    println!(
        "repeat cluster job: {} shard-cache hits, {} sessions reused, \
         {} connections ever opened",
        outcome.shard_cache_hits, stats.sessions_reused, stats.connections_opened
    );
}
