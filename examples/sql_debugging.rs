//! Explanations in databases (§3): provenance, tuple Shapley values, and
//! complaint-driven debugging of a query over model predictions.
//!
//! ```sh
//! cargo run --release --example sql_debugging
//! ```

use xai::prelude::*;
use xai::provenance::{
    complaint_influence, top_suspects, tuple_shapley_exact, Aggregate, Complaint,
    IncrementalRidge, PredicateCountQuery, Relation, Value,
};

fn main() {
    // ── 1. Provenance through a query ─────────────────────────────────
    // orders(cust, item, qty) ⋈ customers(cust, city), then "which cities
    // ordered disks?"
    let (orders, next) = Relation::base(
        "orders",
        &["cust", "item", "qty"],
        vec![
            vec![Value::Str("ann".into()), Value::Str("disk".into()), Value::Int(2)],
            vec![Value::Str("bob".into()), Value::Str("disk".into()), Value::Int(1)],
            vec![Value::Str("cat".into()), Value::Str("cpu".into()), Value::Int(4)],
            vec![Value::Str("dan".into()), Value::Str("disk".into()), Value::Int(3)],
        ],
        0,
    );
    let (customers, _) = Relation::base(
        "customers",
        &["cust", "city"],
        vec![
            vec![Value::Str("ann".into()), Value::Str("paris".into())],
            vec![Value::Str("bob".into()), Value::Str("paris".into())],
            vec![Value::Str("cat".into()), Value::Str("rome".into())],
            vec![Value::Str("dan".into()), Value::Str("oslo".into())],
        ],
        next,
    );
    let disk_cities = orders
        .select(|v| v[1] == Value::Str("disk".into()))
        .join(&customers)
        .project(&["city"]);
    println!("Q: which cities ordered disks?");
    for t in &disk_cities.tuples {
        println!(
            "  {}  (lineage: base tuples {:?}, {} derivation(s))",
            t.values[0],
            t.provenance.lineage(),
            t.provenance.n_derivations()
        );
    }

    // ── 2. Tuple Shapley: why is "paris" an answer? ───────────────────
    let paris = disk_cities
        .tuples
        .iter()
        .find(|t| t.values[0] == Value::Str("paris".into()))
        .expect("paris answers");
    let endo = paris.provenance.lineage();
    let phi = tuple_shapley_exact(&paris.provenance, &endo);
    println!("\nShapley responsibility of base tuples for answer 'paris':");
    for (v, p) in endo.iter().zip(&phi) {
        println!("  tuple #{v}: {p:.3}");
    }
    println!("  (two independent witnesses through ann and bob share credit)");

    // ── 3. Complaint-driven debugging of a Query-2.0 aggregate ────────
    // A model predicts loan approval; the query counts approvals. The
    // auditor complains the count is inflated — because someone corrupted
    // training labels. Influence analysis finds them.
    let mut train = xai::data::synth::linear_gaussian(300, &[2.0, -1.0], 0.0, 31);
    let serving = xai::data::synth::linear_gaussian(400, &[2.0, -1.0], 0.0, 32);
    // Corrupt: flip 30 negatives to positive.
    let corrupted = {
        use xai_rand::seq::SliceRandom;
        use xai_rand::SeedableRng;
        let mut rng = xai_rand::rngs::StdRng::seed_from_u64(7);
        let mut zeros: Vec<usize> = (0..train.n_rows()).filter(|&i| train.y()[i] < 0.5).collect();
        zeros.shuffle(&mut rng);
        zeros.truncate(30);
        for &i in &zeros {
            train.set_label(i, 1.0);
        }
        zeros
    };
    let model = LogisticRegression::fit(train.x(), train.y(), LogisticConfig { l2: 1e-2, ..Default::default() });
    let query = PredicateCountQuery::new(&serving, |_| true);
    println!(
        "\nSELECT count(*) FROM serving WHERE M(x)=1  ⇒  {} (relaxed {:.1})",
        query.hard_value(&model),
        query.relaxed_value(&model)
    );
    let att = complaint_influence(&model, &train, &query, Complaint::TooHigh);
    let suspects = top_suspects(&att, 30);
    let hits = suspects.iter().filter(|s| corrupted.contains(s)).count();
    println!("complaint('too high') → top-30 suspects contain {hits}/30 truly corrupted tuples");
    let cleaned = train.without(&suspects);
    let refit = LogisticRegression::fit(cleaned.x(), cleaned.y(), LogisticConfig { l2: 1e-2, ..Default::default() });
    println!(
        "after deleting suspects: count {} -> {}",
        query.hard_value(&model),
        query.hard_value(&refit)
    );

    // ── 4. PrIU: deleting tuples without retraining ───────────────────
    let x = train.x().with_intercept();
    let mut inc = IncrementalRidge::fit(&x, train.y(), 1e-3);
    println!("\nPrIU-style incremental deletion of the 30 suspect tuples:");
    let before = inc.coef();
    for &i in &suspects {
        inc.remove_row(x.row(i), train.y()[i]);
    }
    let after = inc.coef();
    println!("  coef[1]: {:+.4} -> {:+.4} (O(d²) per deletion, no retraining)", before[1], after[1]);

    // ── 5. Aggregate provenance in the engine itself ──────────────────
    let per_city = orders.join(&customers).aggregate(&["city"], Some("qty"), Aggregate::Sum);
    println!("\nper-city quantities with lineage:");
    for t in &per_city.tuples {
        println!("  {} = {} (from base tuples {:?})", t.values[0], t.values[1], t.provenance.lineage());
    }
}
