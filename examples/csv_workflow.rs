//! The full production loop on file-based data: CSV in → model trained →
//! decision explained → model persisted → dirty data repaired →
//! missing answer explained. Every byte that enters or leaves the process
//! uses the workspace's own parsers (CSV, JSON).
//!
//! ```sh
//! cargo run --release --example csv_workflow
//! ```

use xai::core::parse_json;
use xai::data::{load_csv, to_csv, Task};
use xai::models::Persist;
use xai::prelude::*;
use xai::provenance::{
    greedy_repair, repair_responsibility, why_not, FunctionalDependency, Relation, Value,
};

const APPLICATIONS_CSV: &str = "\
age,housing,income,savings,approved
39,own,2800,9000,1
25,rent,1900,1200,0
61,own,3100,22000,1
33,rent,2100,2500,0
45,own,2950,15000,1
29,rent,2300,3000,0
52,own,3300,30000,1
24,rent,1750,900,0
47,own,2700,11000,1
36,rent,2450,4100,0
58,own,3050,26000,1
29,rent,2050,2000,0
44,own,2900,14000,1
27,rent,1850,1500,0
50,own,3150,21000,1
31,rent,2200,2700,0
";

fn main() {
    // ── 1. Load CSV with schema inference ──
    let data = load_csv(APPLICATIONS_CSV, "approved", Task::BinaryClassification)
        .expect("well-formed CSV");
    println!(
        "loaded {} rows, {} features ({} categorical)",
        data.n_rows(),
        data.n_features(),
        data.schema().features().iter().filter(|f| f.is_categorical()).count()
    );

    // ── 2. Train and explain a decision ──
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let names = data.schema().names();
    let attribution = kernel_shap_attribution(&f, data.row(1), data.x(), &names, Default::default());
    println!("\napplicant #1 (P = {:.3}) explained by Kernel SHAP:", f(data.row(1)));
    for (name, v) in attribution.top_k(3) {
        println!("  {name:>8}: {v:+.4}");
    }

    // ── 3. Persist the model and prove the round trip ──
    let saved = model.save().to_json();
    let restored = LogisticRegression::load(&parse_json(&saved).unwrap()).unwrap();
    let same = (0..data.n_rows()).all(|i| model.proba_one(data.row(i)) == restored.proba_one(data.row(i)));
    println!("\nmodel serialized to {} bytes of JSON; bit-exact reload: {same}", saved.len());

    // ── 4. Snapshot prepared data back to CSV for the audit trail ──
    let snapshot = to_csv(&data);
    println!("data snapshot: {} bytes, {} lines", snapshot.len(), snapshot.lines().count());

    // ── 5. Repair a dirty reference table before joining ──
    let (branches, _) = Relation::base(
        "branches",
        &["zip", "branch_city"],
        vec![
            vec![Value::Int(10001), Value::Str("nyc".into())],
            vec![Value::Int(10001), Value::Str("nyc".into())],
            vec![Value::Int(10001), Value::Str("newark".into())], // dirty
            vec![Value::Int(2139), Value::Str("cambridge".into())],
        ],
        0,
    );
    let fds = [FunctionalDependency::new(&["zip"], &["branch_city"])];
    let blame = repair_responsibility(&branches, &fds, 1000, 7);
    let deleted = greedy_repair(&branches, &fds, 5);
    println!("\nFD zip→branch_city violated; tuple responsibilities: {blame:?}");
    println!("greedy Shapley-guided repair deletes tuple(s) {deleted:?}");

    // ── 6. Why-not: a missing query answer, explained and repaired ──
    let conditions = vec![
        xai::core::Condition {
            feature: 2,
            feature_name: "income".into(),
            op: xai::core::Op::Gt,
            value: 3000.0,
        },
    ];
    // Why is zip... — here: why is applicant with age 39 not a high earner?
    let (apps, _) = Relation::base(
        "apps",
        &["age", "housing", "income"],
        vec![
            vec![Value::Int(39), Value::Str("own".into()), Value::Float(2800.0)],
            vec![Value::Int(61), Value::Str("own".into()), Value::Float(3100.0)],
        ],
        100,
    );
    let exp = why_not(&apps, &conditions, &["age"], &[Value::Int(39)]);
    println!("\nwhy is age=39 missing from 'income > 3000' earners?");
    for w in &exp.witnesses {
        for c in &w.failed_conditions {
            println!("  candidate tuple #{} fails: {c}", w.tuple_index);
        }
        for &(col, cur, need) in &w.repairs {
            println!("  minimal repair: column {col}: {cur} -> {need}");
        }
    }
}
