//! Auditing and debugging a biased model (§2.1.1, §2.3).
//!
//! A recidivism-style model was trained on data with an injected
//! group bias plus corrupted labels. The audit pipeline:
//!
//! 1. measure the bias (demographic parity),
//! 2. explain it with global TreeSHAP importance,
//! 3. demonstrate how a scaffolding attack would *hide* that bias from
//!    LIME (Slack et al.),
//! 4. find the corrupted training labels with influence functions and
//!    KNN-Shapley, and show that cleaning them helps.
//!
//! ```sh
//! cargo run --release --example loan_audit
//! ```

use xai::data::metrics::{accuracy, demographic_parity_gap};
use xai::datavalue::{influence_on_test_loss, knn_shapley, Solver};
use xai::prelude::*;
use xai::surrogate::{lime_audit, AttackConfig, ScaffoldedModel};

fn main() {
    // Biased world: the label mechanism itself discriminates on `group`.
    let mut train = xai::data::synth::recidivism(1200, 3, 1.2);
    let test = xai::data::synth::recidivism(800, 4, 1.2);
    let corrupted = xai::data::inject_label_noise(&mut train, 0.08, 9);
    println!("training set: {} rows, {} with corrupted labels\n", train.n_rows(), corrupted.len());

    // ── 1. Train + measure bias ──
    let model = Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 60, ..GbdtConfig::default() });
    let preds = Classifier::predict(&model, test.x());
    let group_col = test.x().col(4);
    println!("test accuracy        : {:.3}", accuracy(test.y(), &preds));
    println!("demographic parity gap: {:.3}\n", demographic_parity_gap(&preds, &group_col));

    // ── 2. What drives predictions globally? ──
    let gi = xai::shapley::gbdt_global_importance(&model, &test, 200);
    println!("global TreeSHAP importance (mean |phi| over 200 rows):");
    for (name, v) in gi.top_k(5) {
        println!("  {name:>16}: {v:.4}");
    }
    println!();

    // ── 3. The adversarial scenario: hiding the bias from LIME ──
    let scaffold = ScaffoldedModel::train(&train, 4, 1, AttackConfig::default());
    let honest = |x: &[f64]| scaffold.biased_prediction(x);
    let attacked = |x: &[f64]| scaffold.predict(x);
    let honest_audit = lime_audit(&honest, &test, 4, 20, 5);
    let attacked_audit = lime_audit(&attacked, &test, 4, 20, 5);
    println!("LIME audit: how often is `group` the top-1 feature?");
    println!("  honest biased model   : {:.0}%", honest_audit.protected_top1_rate * 100.0);
    println!("  scaffolded (attacked) : {:.0}%", attacked_audit.protected_top1_rate * 100.0);
    println!("  (the attack hides a model that is fully biased on real data)\n");

    // ── 4. Debugging: find the corrupted labels ──
    let lr = LogisticRegression::fit(train.x(), train.y(), LogisticConfig::default());
    let inf = influence_on_test_loss(&lr, &train, &test, Solver::Cholesky);
    let knn_vals = knn_shapley(&train, &test, 5);
    let k = corrupted.len();
    println!("corrupted-label detection (precision@{k}):");
    println!("  influence functions : {:.2}", inf.precision_at_k(&corrupted, k));
    println!("  exact KNN-Shapley   : {:.2}", knn_vals.precision_at_k(&corrupted, k));

    // Clean the top suspects and retrain.
    let suspects: Vec<usize> = inf.ranking_asc().into_iter().take(k).collect();
    let cleaned = train.without(&suspects);
    let refit = Gbdt::fit(cleaned.x(), cleaned.y(), GbdtConfig { n_rounds: 60, ..GbdtConfig::default() });
    let new_acc = accuracy(test.y(), &Classifier::predict(&refit, test.x()));
    println!(
        "\nafter removing the {k} prime suspects: test accuracy {:.3} -> {:.3}",
        accuracy(test.y(), &preds),
        new_acc
    );
}
