//! Sharded explanation runs (DESIGN.md §11): one estimation job split
//! into deterministic shards, executed three ways — unsharded, sharded
//! in-process, and sharded across OS processes — all producing the
//! same bytes.
//!
//! The shard plan partitions the estimator's *random draws* (here the
//! sampled coalitions of Kernel SHAP), so each shard replays exactly
//! its slice of the seed stream and the merge is bit-identical to the
//! single-machine run at any shard count.
//!
//! ```sh
//! cargo build && cargo run --example shard_demo
//! ```
//!
//! (A debug `cargo build` first, so the sibling `xai-shard-worker`
//! binary exists for the process-pool leg.)

use xai::prelude::*;
use xai::shard::{
    build_descriptors, explain_process_pool, explain_sharded, sibling_worker_exe, PoolConfig,
};
use xai_models::Persist;

fn main() {
    let data = xai::data::synth::german_credit(80, 7);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(11).with_workers(2));
    let method = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 128, ..KernelShapConfig::default() },
    };

    // ── 1. The single-machine reference run ─────────────────────────
    let reference = method.explain(&model, &req).unwrap();
    let reference_bytes = reference.to_json_string();
    println!("unsharded Kernel SHAP: {} bytes of canonical JSON", reference_bytes.len());

    // ── 2. What travels between machines: the shard descriptors ────
    let descriptors = build_descriptors(&method, &req, model.save(), 2).unwrap();
    println!("\nshard plan at n_shards = 2:");
    for d in &descriptors {
        println!(
            "  shard {}/{}: chunks [{}, {}) of {} draws, fingerprint {}",
            d.shard, d.n_shards, d.chunk_start, d.chunk_end, d.total_draws, d.fingerprint
        );
    }

    // ── 3. In-process sharded execution, several shard counts ───────
    for n_shards in [1usize, 2, 4, 7] {
        let sharded = explain_sharded(&method, &model, &req, n_shards).unwrap();
        assert_eq!(sharded.to_json_string(), reference_bytes);
        println!("in-process  n_shards = {n_shards}: bit-identical to the reference");
    }

    // ── 4. Process-pool execution: descriptors on stdin, results on
    //       stdout, merged back by the coordinator ───────────────────
    let Some(worker) = sibling_worker_exe() else {
        println!("\nxai-shard-worker binary not found next to this example;");
        println!("run `cargo build` first to exercise the process-pool leg.");
        return;
    };
    let pool = PoolConfig::new(worker);
    for n_shards in [2usize, 4] {
        let pooled = explain_process_pool(&method, &model, &req, n_shards, &pool).unwrap();
        assert_eq!(pooled.to_json_string(), reference_bytes);
        println!("process pool n_shards = {n_shards}: bit-identical to the reference");
    }

    println!("\nevery execution strategy produced the same bytes.");
}
