//! The unified explainer layer, end to end: one `ExplainRequest` + one
//! `RunConfig` drive every method, and `Registry::resolve` walks the
//! tutorial's taxonomy dimensions returning *live* explainers.
//!
//! ```sh
//! cargo run --release --example unified_api
//! ```

use xai::core::taxonomy::{Access, Scope};
use xai::prelude::*;

fn show(explanation: &Explanation, names: &[String]) -> String {
    match explanation {
        Explanation::Attribution(a) => {
            let top = a.top_k(3).into_iter();
            let lead =
                top.map(|(n, v)| format!("{n} {v:+.3}")).collect::<Vec<_>>().join(", ");
            format!("top features: {lead}")
        }
        Explanation::Curve(c) => format!(
            "{}-point curve over '{}', range [{:.3}, {:.3}]",
            c.grid.len(),
            &names[c.feature],
            c.values.iter().cloned().fold(f64::INFINITY, f64::min),
            c.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        ),
        Explanation::Rules(rules) => format!("{} rule(s), first: {}", rules.len(), rules[0]),
        Explanation::Counterfactuals(cfs) => format!(
            "{} counterfactual(s), first flips to {:.3} changing {} feature(s)",
            cfs.len(),
            cfs[0].counterfactual_output,
            cfs[0].sparsity()
        ),
        Explanation::DataValuation(v) => {
            let top = v.ranking_desc();
            format!("most valuable training rows: {:?}", &top[..3.min(top.len())])
        }
    }
}

fn run_axis(
    title: &str,
    registry: &Registry,
    scope: Scope,
    access: Access,
    model: &dyn ModelOracle,
    req: &ExplainRequest<'_>,
    names: &[String],
) {
    println!("— {title}: resolve({scope:?}, {access:?}) —");
    for method in registry.resolve(scope, access) {
        let card = method.card();
        match method.explain(model, req) {
            Ok(explanation) => {
                println!("  {:<30} {}", card.name, show(&explanation, names));
            }
            Err(e) => println!("  {:<30} unavailable here: {e}", card.name),
        }
    }
    println!();
}

fn main() {
    // One dataset, one model, one request, one plan.
    let data = xai::data::synth::german_credit(300, 42);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let names = data.schema().names().iter().map(|s| s.to_string()).collect::<Vec<_>>();

    // Pick a rejected applicant so the counterfactual searches have a
    // decision to flip.
    let applicant = {
        use xai_models::Classifier;
        (0..data.n_rows())
            .map(|i| data.row(i))
            .find(|r| model.proba_one(r) < 0.5)
            .expect("a rejected applicant exists")
            .to_vec()
    };
    // One execution plan serves every method: seed, worker count and the
    // batched switch replace the per-method twin functions.
    let plan = RunConfig::seeded(7).with_workers(2).with_batched(true);
    let utility = xai::datavalue::KnnUtility::new(&data, &data, 5);
    let req = ExplainRequest::new(&data)
        .instance(&applicant)
        .feature(1)
        .utility(&utility)
        .plan(plan);

    let registry = runnable_registry();
    println!(
        "{} taxonomy cards, {} runnable through Explainer::explain\n",
        registry.cards().len(),
        registry.runnable_names().len()
    );

    // Dimension 1 — scope: explain ONE decision.
    run_axis(
        "Local, any black box",
        &registry,
        Scope::Local,
        Access::ModelAgnostic,
        &model,
        &req,
        &names,
    );
    // Dimension 2 — access: methods that need model internals (the
    // logistic model serves gradients; TreeSHAP politely declines).
    run_axis(
        "Local, model-specific",
        &registry,
        Scope::Local,
        Access::ModelSpecific,
        &model,
        &req,
        &names,
    );
    // Dimension 3 — global and training-data views of the same model.
    run_axis(
        "Global behaviour",
        &registry,
        Scope::Global,
        Access::ModelAgnostic,
        &model,
        &req,
        &names,
    );
    run_axis(
        "Training-data responsibility",
        &registry,
        Scope::TrainingData,
        Access::ModelAgnostic,
        &model,
        &req,
        &names,
    );
    run_axis(
        "Training-data, model-specific",
        &registry,
        Scope::TrainingData,
        Access::ModelSpecific,
        &model,
        &req,
        &names,
    );

    // The same trait object honours the degradation policy and budget
    // knobs of the plan — here a strict, budgeted permutation Shapley.
    let strict = RunConfig::seeded(7).with_budget(SampleBudget::with_max_evals(200)).strict();
    let req = ExplainRequest::new(&data).instance(&applicant).plan(strict);
    let sampled = PermutationShapleyMethod::default().explain(&model, &req).unwrap();
    println!(
        "— budgeted permutation Shapley (≤200 evaluations, strict) —\n  {}",
        show(&sampled, &names)
    );
}
